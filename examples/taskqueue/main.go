// Taskqueue: the paper's Figure 2 application on the live runtime — one
// producer fills a bounded shared queue; workers pop tasks under the GWC
// lock and "execute" them. The tail index is an ordinary eagerly shared
// variable that workers watch locally (the paper's test variable), and
// the producer appends with plain ordered writes, needing no lock at all
// because GWC totally orders a single writer's updates.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"optsync"
)

func main() {
	var (
		nodes = flag.Int("nodes", 5, "cluster size (1 producer + n-1 workers)")
		tasks = flag.Int("tasks", 200, "tasks to produce")
		slots = flag.Int("slots", 16, "queue capacity")
	)
	flag.Parse()
	if err := run(*nodes, *tasks, *slots); err != nil {
		log.Fatal(err)
	}
}

func run(nodes, tasks, slots int) error {
	if nodes < 2 {
		return fmt.Errorf("need at least 2 nodes, got %d", nodes)
	}
	cluster, err := optsync.NewCluster(nodes)
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	// The producer (node 0) is the group root, so its lock-free appends
	// and the workers' lock traffic are sequenced where the data lives.
	group, err := cluster.NewGroup("queue", 0)
	if err != nil {
		return err
	}
	lock := group.Mutex("pop")
	head := group.Int("head", lock) // consume index: workers contend for it
	tail := group.Int("tail")       // produce index: single writer, no lock
	slot := make([]*optsync.Var, slots)
	for i := range slot {
		slot[i] = group.Int(fmt.Sprintf("slot%d", i)) // single writer
	}

	start := time.Now()

	// Producer: plain ordered writes — slot first, then the tail
	// announcement. GWC guarantees every worker sees them in that order.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := cluster.MustHandle(0)
		for t := 1; t <= tasks; t++ {
			// Bounded queue: wait for consumers when full (local test —
			// head is eagerly shared).
			if err := h.WaitGE(head, int64(t-slots)); err != nil {
				log.Println("producer:", err)
				return
			}
			if err := h.Write(slot[t%slots], int64(t*t)); err != nil {
				log.Println("producer:", err)
				return
			}
			if err := h.Write(tail, int64(t)); err != nil {
				log.Println("producer:", err)
				return
			}
		}
	}()

	// Workers: watch the tail locally, pop under the lock, execute.
	executed := make([]int, nodes)
	for w := 1; w < nodes; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := cluster.MustHandle(w)
			var lastHead int64
			for lastHead < int64(tasks) {
				if err := h.WaitGE(tail, lastHead+1); err != nil {
					return
				}
				var got int64
				err := h.Do(lock, func() error {
					hd, err := h.Read(head)
					if err != nil {
						return err
					}
					lastHead = hd
					tl, err := h.Read(tail)
					if err != nil {
						return err
					}
					if hd >= tl {
						return nil // someone beat us to it
					}
					payload, err := h.Read(slot[int(hd+1)%slots])
					if err != nil {
						return err
					}
					_ = payload
					lastHead = hd + 1
					got = hd + 1
					return h.Write(head, hd+1)
				})
				if err != nil {
					log.Println("worker", w, ":", err)
					return
				}
				if got > 0 {
					time.Sleep(time.Millisecond) // "execute" the task
					executed[w]++
				}
			}
		}()
	}
	wg.Wait()

	total := 0
	for w := 1; w < nodes; w++ {
		fmt.Printf("worker %d executed %d tasks\n", w, executed[w])
		total += executed[w]
	}
	fmt.Printf("%d/%d tasks executed in %v across %d workers\n",
		total, tasks, time.Since(start).Round(time.Millisecond), nodes-1)
	if total != tasks {
		return fmt.Errorf("executed %d tasks, want %d", total, tasks)
	}
	return nil
}

package optsync

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"optsync/internal/obs"
)

// TestWriteFastPathAllocs is the alloc regression gate for the
// sequenced-update fast path: a steady-state Write — unguarded or
// guarded under a held mutex — performs zero heap allocations per
// operation, and enabling the event tracer must not change that. The
// observability layer is wired through this path, so any allocation it
// introduces (boxing an emit argument, a lazily built map, a fmt call)
// fails this test before it can reach a benchmark diff.
func TestWriteFastPathAllocs(t *testing.T) {
	for _, traced := range []bool{false, true} {
		var opts []Option
		if traced {
			opts = append(opts, WithTracing(0))
		}
		c, g, m, v := newTestCluster(t, 3, opts...)
		h := c.MustHandle(1)
		free := g.Int("free")
		if err := h.Write(free, 0); err != nil { // warm the var's slot
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(5000, func() { _ = h.Write(free, 1) }); avg > 0.05 {
			t.Errorf("traced=%v: unguarded Write allocates %.2f/op, want 0", traced, avg)
		}
		if err := h.Acquire(m); err != nil {
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(5000, func() { _ = h.Write(v, 1) }); avg > 0.05 {
			t.Errorf("traced=%v: guarded Write allocates %.2f/op, want 0", traced, avg)
		}
		if err := h.Release(m); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMetricsUnderContendedLoad is the acceptance check for the
// observability layer: after chaos-style contended load, the cluster-wide
// snapshot must hold real acquire-latency and rollback-cost
// distributions, and the opt-in HTTP endpoint must serve them.
func TestMetricsUnderContendedLoad(t *testing.T) {
	c, _, m, v := newTestCluster(t, 3, WithMetricsAddr("127.0.0.1:0"))
	addr := c.MetricsAddr()
	if addr == "" {
		t.Fatal("WithMetricsAddr bound no address")
	}

	// Drive rounds of three nodes racing the same mutex — blocking Do for
	// acquire-latency samples, OptimisticDo for speculative sections —
	// until contention has produced at least one rollback on each node's
	// optimistic path. A round with no rollback is legal (speculation can
	// win every race), so keep loading until the distribution fills in.
	deadline := time.Now().Add(15 * time.Second)
	for {
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			h := c.MustHandle(i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < 8; r++ {
					if err := h.OptimisticDo(m, func(tx *Tx) error {
						cur, err := tx.Read(v)
						if err != nil {
							return err
						}
						return tx.Write(v, cur+1)
					}); err != nil {
						t.Error(err)
						return
					}
					if err := h.Do(m, func() error { return nil }); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		s := c.Metrics()
		if s.Hists[obs.HistLockAcquire].Count > 0 && s.Hists[obs.HistRollback].Count > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("contended load never filled the histograms: acquire n=%d rollback n=%d",
				s.Hists[obs.HistLockAcquire].Count, s.Hists[obs.HistRollback].Count)
		}
	}

	s := c.Metrics()
	// A rollback implies a speculative section ran, and its restore cost
	// was timed; the merged snapshot must agree with itself.
	if s.Hists[obs.HistSpecSection].Count == 0 {
		t.Error("rollbacks recorded but no speculative section was timed")
	}
	if s.Hists[obs.HistRollback].Mean() < 0 {
		t.Errorf("rollback mean = %v, negative cost", s.Hists[obs.HistRollback].Mean())
	}
	// WithMetricsAddr implies tracing, so event counters must be live too.
	if s.Events[obs.EvLockGrant] == 0 {
		t.Error("tracing implied by WithMetricsAddr, but no grant events counted")
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{"lock_acquire", "rollback", "spec_section"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "lock_acquire   n=0") {
		t.Errorf("/metrics reports an empty acquire histogram after load:\n%s", text)
	}

	resp, err = http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars = %d, want 200", resp.StatusCode)
	}
}

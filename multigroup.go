package optsync

import (
	"fmt"
	"sort"
)

// Multi-group mutual exclusion (Section 2): "Mutual exclusion across
// multiple groups requires permissions from all the involved roots."
// AcquireAll collects the grants in a canonical global order (group ID,
// then lock ID) so concurrent multi-group sections can never deadlock on
// each other, and ReleaseAll returns them in the reverse order, keeping
// each lock's data writes sequenced before its release at its own root.

// sortMutexes returns the locks in canonical acquisition order,
// rejecting duplicates.
func sortMutexes(mutexes []*Mutex) ([]*Mutex, error) {
	ms := append([]*Mutex(nil), mutexes...)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].g.id != ms[j].g.id {
			return ms[i].g.id < ms[j].g.id
		}
		return ms[i].id < ms[j].id
	})
	for i := 1; i < len(ms); i++ {
		if ms[i].g.id == ms[i-1].g.id && ms[i].id == ms[i-1].id {
			return nil, fmt.Errorf("optsync: duplicate mutex %q in multi-group acquisition", ms[i].name)
		}
	}
	return ms, nil
}

// AcquireAll blocks until this node holds every given mutex, acquiring in
// the canonical order regardless of argument order. On error, locks
// already held are released.
func (h *Handle) AcquireAll(mutexes ...*Mutex) error {
	ms, err := sortMutexes(mutexes)
	if err != nil {
		return err
	}
	for i, m := range ms {
		if err := h.Acquire(m); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = h.Release(ms[j])
			}
			return fmt.Errorf("optsync: multi-group acquire %q: %w", m.name, err)
		}
	}
	return nil
}

// ReleaseAll frees every given mutex in reverse canonical order.
func (h *Handle) ReleaseAll(mutexes ...*Mutex) error {
	ms, err := sortMutexes(mutexes)
	if err != nil {
		return err
	}
	var first error
	for i := len(ms) - 1; i >= 0; i-- {
		if err := h.Release(ms[i]); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DoAll runs body with every given mutex held — mutual exclusion across
// multiple sharing groups, each grant coming from its own group root.
func (h *Handle) DoAll(body func() error, mutexes ...*Mutex) error {
	if err := h.AcquireAll(mutexes...); err != nil {
		return err
	}
	bodyErr := body()
	if err := h.ReleaseAll(mutexes...); err != nil {
		return err
	}
	return bodyErr
}

package optsync

import (
	"fmt"
	"sort"
)

// Multi-group mutual exclusion (Section 2): "Mutual exclusion across
// multiple groups requires permissions from all the involved roots."
// AcquireAll collects the grants in a canonical global order (group ID,
// then lock ID) so concurrent multi-group sections can never deadlock on
// each other, and ReleaseAll returns them in the reverse order, keeping
// each lock's data writes sequenced before its release at its own root.

// sortLocks returns the locks in canonical acquisition order, rejecting
// duplicates. The ordering is shared by every lock kind — a section
// mixing Mutex and SessionLock acquisitions still sorts into one global
// order, so it cannot deadlock against any other multi-lock section.
func sortLocks[L Lock](locks []L) ([]L, error) {
	ms := append([]L(nil), locks...)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Group().id != ms[j].Group().id {
			return ms[i].Group().id < ms[j].Group().id
		}
		return ms[i].lockID() < ms[j].lockID()
	})
	for i := 1; i < len(ms); i++ {
		if ms[i].Group().id == ms[i-1].Group().id && ms[i].lockID() == ms[i-1].lockID() {
			return nil, fmt.Errorf("optsync: duplicate lock %q in multi-group acquisition", ms[i].Name())
		}
	}
	return ms, nil
}

// sortMutexes returns the mutexes in canonical acquisition order,
// rejecting duplicates.
func sortMutexes(mutexes []*Mutex) ([]*Mutex, error) {
	return sortLocks(mutexes)
}

// AcquireAll blocks until this node holds every given mutex, acquiring in
// the canonical order regardless of argument order. On error, locks
// already held are released.
func (h *Handle) AcquireAll(mutexes ...*Mutex) error {
	ms, err := sortMutexes(mutexes)
	if err != nil {
		return err
	}
	for i, m := range ms {
		if err := h.Acquire(m); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = h.Release(ms[j])
			}
			return fmt.Errorf("optsync: multi-group acquire %q: %w", m.name, err)
		}
	}
	return nil
}

// ReleaseAll frees every given mutex in reverse canonical order.
func (h *Handle) ReleaseAll(mutexes ...*Mutex) error {
	ms, err := sortMutexes(mutexes)
	if err != nil {
		return err
	}
	var first error
	for i := len(ms) - 1; i >= 0; i-- {
		if err := h.Release(ms[i]); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DoAll runs body with every given mutex held — mutual exclusion across
// multiple sharing groups, each grant coming from its own group root.
func (h *Handle) DoAll(body func() error, mutexes ...*Mutex) error {
	if err := h.AcquireAll(mutexes...); err != nil {
		return err
	}
	bodyErr := body()
	if err := h.ReleaseAll(mutexes...); err != nil {
		return err
	}
	return bodyErr
}

// EnterAll blocks until this node holds an entry in the given session of
// every listed session lock, entering in the canonical order (group ID,
// then lock ID) regardless of argument order — the same global order
// AcquireAll uses, so mixed Mutex/SessionLock sections cannot deadlock
// on each other. On error, entries already taken are left.
func (h *Handle) EnterAll(session uint32, locks ...*SessionLock) error {
	ls, err := sortLocks(locks)
	if err != nil {
		return err
	}
	for i, l := range ls {
		if err := h.Enter(l, session); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = h.Leave(ls[j])
			}
			return fmt.Errorf("optsync: multi-group enter %q: %w", l.name, err)
		}
	}
	return nil
}

// LeaveAll gives up this node's entries in every listed session lock, in
// reverse canonical order.
func (h *Handle) LeaveAll(locks ...*SessionLock) error {
	ls, err := sortLocks(locks)
	if err != nil {
		return err
	}
	var first error
	for i := len(ls) - 1; i >= 0; i-- {
		if err := h.Leave(ls[i]); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SessionDoAll runs body with an entry held in the given session of
// every listed lock — group mutual exclusion across multiple sharing
// groups, each entry granted by its own group root.
func (h *Handle) SessionDoAll(session uint32, body func() error, locks ...*SessionLock) error {
	if err := h.EnterAll(session, locks...); err != nil {
		return err
	}
	bodyErr := body()
	if err := h.LeaveAll(locks...); err != nil {
		return err
	}
	return bodyErr
}

package optsync

import "context"

// Watch returns a channel that receives values of v as sequenced updates
// apply on this node. Delivery coalesces: if the consumer lags, it skips
// to the latest value rather than buffering history (eagersharing keeps
// local copies current; readers who need every transition should version
// their data or use a Published block). Call cancel to release the watch;
// the channel closes afterwards.
func (h *Handle) Watch(v *Var) (values <-chan int64, cancel func(), err error) {
	ch := make(chan int64, 1)
	unregister, err := h.node.OnVarChange(v.g.id, v.id, func(val int64) {
		// Coalesce: drop the stale value if the consumer hasn't taken it.
		select {
		case ch <- val:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- val:
			default:
			}
		}
	})
	if err != nil {
		return nil, nil, err
	}
	done := make(chan struct{})
	cancel = func() {
		select {
		case <-done:
			return // already cancelled
		default:
		}
		close(done)
		unregister()
		close(ch)
	}
	return ch, cancel, nil
}

// AcquireCtx is Acquire that gives up when ctx is cancelled. On
// cancellation the pending request is disowned: if the root grants it
// later, a background release hands the lock straight back, so the lock
// never wedges.
//
// Deprecated: use AcquireContext, the standard-library spelling.
func (h *Handle) AcquireCtx(ctx context.Context, m *Mutex) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() {
		done <- h.Acquire(m)
	}()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		// The request may still be queued at the root. Absorb the
		// eventual grant and release it immediately.
		go func() {
			if err := <-done; err == nil {
				_ = h.Release(m)
			}
		}()
		return ctx.Err()
	}
}

// WaitGECtx is WaitGE that gives up when ctx is cancelled.
//
// Deprecated: use WaitGEContext, the standard-library spelling.
func (h *Handle) WaitGECtx(ctx context.Context, v *Var, min int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() {
		done <- h.WaitGE(v, min)
	}()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DoCtx is Do with a cancellable acquisition. Once the lock is held the
// body runs to completion regardless of ctx (a half-applied critical
// section would corrupt the shared data).
//
// Deprecated: use DoContext, the standard-library spelling.
func (h *Handle) DoCtx(ctx context.Context, m *Mutex, body func() error) error {
	if err := h.AcquireCtx(ctx, m); err != nil {
		return err
	}
	bodyErr := body()
	if err := h.Release(m); err != nil {
		return err
	}
	return bodyErr
}

// Command figure2 regenerates the paper's Figure 2: speedup for the
// task-management application (one producer, 1024 tasks, shared queue
// under mutual exclusion) for the ideal zero-delay network, Sesame GWC
// with eagersharing, and the fast version of entry consistency, on
// network sizes 3, 5, 9, ..., 129.
//
// Usage:
//
//	figure2 [-quick] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"optsync/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "run a reduced sweep (fewer tasks)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()
	if err := run(*quick, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "figure2:", err)
		os.Exit(1)
	}
}

func run(quick, csv bool) error {
	fig, err := exp.Figure2(exp.Options{Quick: quick})
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(fig.CSV())
	} else {
		fmt.Print(fig.Table())
	}
	if err := exp.CheckFigure2(fig); err != nil {
		return fmt.Errorf("shape check failed: %w", err)
	}
	gwc, _ := fig.Get("gwc")
	ent, _ := fig.Get("entry")
	fmt.Printf("\nshape check: OK — gwc peak %.1f @ %d (paper %.1f @ %d), entry peak %.1f @ %d (paper %.1f @ %d)\n",
		gwc.Peak().Power, gwc.Peak().N,
		exp.PaperFigure2["gwc-peak"].Power, exp.PaperFigure2["gwc-peak"].N,
		ent.Peak().Power, ent.Peak().N,
		exp.PaperFigure2["entry-peak"].Power, exp.PaperFigure2["entry-peak"].N)
	return nil
}

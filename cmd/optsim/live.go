package main

import (
	"fmt"
	"os"
	"sync"

	"optsync"
	"optsync/internal/obs"
)

// runLive drives a contended increment workload on a real optsync
// cluster (in-process transport, batching and tracing on) and dumps the
// observability layer's output: merged latency histograms — lock
// acquire, speculative section, rollback cost, batch flush — and, with
// -trace, the tail of the merged protocol event trace. This is the
// source of EXPERIMENTS.md's latency-distribution tables.
func runLive(n, sections int, withTrace bool) error {
	if n < 2 {
		n = 4
	}
	if sections <= 0 {
		sections = 200
	}
	c, err := optsync.NewCluster(n, optsync.WithTracing(0), optsync.WithBatching(0, 8))
	if err != nil {
		return err
	}
	defer c.Close()
	g, err := c.NewGroup("live", 0)
	if err != nil {
		return err
	}
	m := g.Mutex("m")
	counter := g.Int("counter", m)
	free := g.Int("free")

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := c.MustHandle(i)
			for s := 0; s < sections; s++ {
				if err := h.OptimisticDo(m, func(tx *optsync.Tx) error {
					cur, err := tx.Read(counter)
					if err != nil {
						return err
					}
					return tx.Write(counter, cur+1)
				}); err != nil {
					errs[i] = err
					return
				}
				// Unguarded background traffic exercises the batch plane.
				if err := h.Write(free, int64(i*sections+s)); err != nil {
					errs[i] = err
					return
				}
			}
			errs[i] = h.Sync(g)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	got, err := c.MustHandle(0).Read(counter)
	if err != nil {
		return err
	}
	fmt.Printf("live  nodes=%d sections=%d counter=%d (want %d)\n", n, sections, got, n*sections)
	var opt, reg, roll int
	for i := 0; i < n; i++ {
		st := c.MustHandle(i).Stats()
		opt += st.Optimistic.Optimistic
		reg += st.Optimistic.Regular
		roll += st.Optimistic.Rollbacks
	}
	fmt.Printf("  optimistic=%d regular=%d rollbacks=%d\n", opt, reg, roll)
	c.WriteMetrics(os.Stdout)
	if withTrace {
		evs := c.TraceEvents()
		if len(evs) > 60 {
			evs = evs[len(evs)-60:]
		}
		fmt.Print(obs.Format(evs))
	}
	return nil
}

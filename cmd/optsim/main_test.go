package main

import "testing"

func TestRunWorkloads(t *testing.T) {
	tests := []struct {
		wl, model string
		n         int
	}{
		{"pipeline", "gwc-optimistic", 4},
		{"pipeline", "entry", 4},
		{"taskmgmt", "gwc", 5},
		{"taskmgmt", "release", 3},
		{"mutex3", "gwc", 3},
		{"mutex3", "entry", 3},
	}
	for _, tt := range tests {
		if err := run(tt.wl, tt.model, tt.n, 64, 64, false, tt.wl == "mutex3"); err != nil {
			t.Errorf("run(%s, %s, %d): %v", tt.wl, tt.model, tt.n, err)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run("bogus", "gwc", 3, 0, 0, false, false); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("pipeline", "bogus", 3, 0, 0, false, false); err == nil {
		t.Error("unknown model accepted")
	}
}

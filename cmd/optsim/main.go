// Command optsim runs one of the paper's workloads under a chosen
// consistency model with custom parameters — the general driver behind
// the per-figure commands.
//
// Usage:
//
//	optsim -workload pipeline  -model gwc-optimistic -n 64
//	optsim -workload taskmgmt  -model entry -n 33 -tasks 512
//	optsim -workload mutex3    -model release -trace
package main

import (
	"flag"
	"fmt"
	"os"

	"optsync/internal/model"
	"optsync/internal/sim"
	"optsync/internal/trace"
	"optsync/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "pipeline", "workload: pipeline, taskmgmt, mutex3, or live")
		modelName = flag.String("model", "gwc", "model: gwc, gwc-optimistic, entry, or release")
		n         = flag.Int("n", 8, "network size (CPUs); mutex3 is fixed at 3")
		tasks     = flag.Int("tasks", 0, "taskmgmt: override task count")
		dataSize  = flag.Int("datasize", 0, "pipeline: override data size (ring handoffs)")
		zeroDelay = flag.Bool("zerodelay", false, "use a zero-delay network (ideal line)")
		withTrace = flag.Bool("trace", false, "print the protocol event trace (mutex3 only)")
	)
	flag.Parse()
	if err := run(*wl, *modelName, *n, *tasks, *dataSize, *zeroDelay, *withTrace); err != nil {
		fmt.Fprintln(os.Stderr, "optsim:", err)
		os.Exit(1)
	}
}

func run(wl, modelName string, n, tasks, dataSize int, zeroDelay, withTrace bool) error {
	if wl == "live" {
		// The live workload runs on the real runtime, not the figure
		// simulator: -n nodes, -tasks critical sections per node, and
		// -trace dumps the protocol event tail alongside the latency
		// histograms.
		return runLive(n, tasks, withTrace)
	}
	kind, err := workload.ParseKind(modelName)
	if err != nil {
		return err
	}
	k := sim.NewKernel()
	switch wl {
	case "pipeline":
		p := workload.DefaultPipelineParams(n)
		if dataSize > 0 {
			p.DataSize = dataSize
		}
		cfg := baseConfig(n, zeroDelay)
		if kind == workload.KindEntry {
			cfg.ViaManager = true
		}
		p.Configure(&cfg)
		m, err := workload.NewMachine(k, kind, cfg)
		if err != nil {
			return err
		}
		r, err := workload.RunPipeline(k, m, p)
		if err != nil {
			return err
		}
		fmt.Printf("pipeline  model=%s n=%d power=%.3f makespan=%dns\n", r.Model, r.N, r.Power, r.Makespan)
		printStats(r.Stats)
	case "taskmgmt":
		p := workload.DefaultTaskMgmtParams(n, kind)
		if tasks > 0 {
			p.Tasks = tasks
		}
		cfg := baseConfig(n, zeroDelay)
		p.Configure(&cfg)
		m, err := workload.NewMachine(k, kind, cfg)
		if err != nil {
			return err
		}
		r, err := workload.RunTaskMgmt(k, m, p)
		if err != nil {
			return err
		}
		fmt.Printf("taskmgmt  model=%s n=%d power=%.2f makespan=%dns executed=%d\n",
			r.Model, r.N, r.Power, r.Makespan, r.Executed)
		printStats(r.Stats)
	case "mutex3":
		p := workload.DefaultMutex3Params()
		cfg := baseConfig(3, zeroDelay)
		tr := &trace.Log{}
		if withTrace {
			cfg.Trace = tr
		}
		p.Configure(&cfg)
		if kind == workload.KindEntry {
			cfg.Invalidate = true
		}
		m, err := workload.NewMachine(k, kind, cfg)
		if err != nil {
			return err
		}
		if e, ok := m.(*model.Entry); ok {
			e.SetReaders(0, []int{1, 2})
		}
		r, err := workload.RunMutex3(k, m, p)
		if err != nil {
			return err
		}
		fmt.Printf("mutex3  model=%s total=%dns totalIdle=%dns\n", r.Model, r.Total, r.TotalIdle)
		for i, c := range r.CPU {
			fmt.Printf("  CPU%d: request=%d grant=%d release=%d idle=%d\n", i+1, c.Request, c.Grant, c.Release, c.Idle)
		}
		printStats(r.Stats)
		if withTrace {
			fmt.Println(tr)
		}
	default:
		return fmt.Errorf("unknown workload %q (want pipeline, taskmgmt, mutex3, or live)", wl)
	}
	return nil
}

func baseConfig(n int, zeroDelay bool) model.Config {
	cfg := model.DefaultConfig(n)
	if zeroDelay {
		cfg.Net.HopLatency = 0
		cfg.Net.BytesPerNS = 1e12
		cfg.RootProc = 0
	}
	return cfg
}

func printStats(s model.Stats) {
	fmt.Printf("  messages=%d bytes=%d suppressed=%d rollbacks=%d optimisticOK=%d regularPath=%d demandFetch=%d invalidations=%d\n",
		s.Messages, s.Bytes, s.Suppressed, s.Rollbacks, s.OptimisticOK, s.RegularPath, s.DemandFetch, s.Invalidation)
}

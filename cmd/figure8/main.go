// Command figure8 regenerates the paper's Figure 8: network power of the
// constructed pipeline example (data size 1024, mutual exclusion to local
// computation ratio 1/8) under the zero-delay ceiling, optimistic GWC
// locking, regular GWC locking, and entry consistency, on 2 to 128 CPUs.
// It also prints Section 4.1's headline speedup ratios.
//
// Usage:
//
//	figure8 [-quick] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"optsync/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "run a reduced sweep (shorter pipeline)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()
	if err := run(*quick, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "figure8:", err)
		os.Exit(1)
	}
}

func run(quick, csv bool) error {
	fig, err := exp.Figure8(exp.Options{Quick: quick})
	if err != nil {
		return err
	}
	if csv {
		fmt.Print(fig.CSV())
	} else {
		fmt.Print(fig.Table())
	}
	ratios, err := exp.HeadlineRatios(fig)
	if err != nil {
		return err
	}
	fmt.Printf("\nheadline ratios at N=%d:\n", fig.Sizes()[0])
	fmt.Printf("  optimistic / non-optimistic GWC = %.2f  (paper: %.1f)\n",
		ratios["optimistic/gwc"], exp.PaperHeadlineRatios["optimistic/gwc"])
	fmt.Printf("  optimistic / entry consistency  = %.2f  (paper: %.1f)\n",
		ratios["optimistic/entry"], exp.PaperHeadlineRatios["optimistic/entry"])
	if err := exp.CheckFigure8(fig); err != nil {
		return fmt.Errorf("shape check failed: %w", err)
	}
	fmt.Println("shape check: OK (max > optimistic > gwc > entry; decay with size)")
	return nil
}

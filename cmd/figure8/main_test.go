package main

import "testing"

func TestRunFigure8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	if err := run(true /* quick */, true /* csv */); err != nil {
		t.Fatal(err)
	}
}

package main

import "testing"

func TestRunExtensionsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	if err := run(true /* quick */, false /* csv */); err != nil {
		t.Fatal(err)
	}
}

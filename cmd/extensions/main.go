// Command extensions runs the beyond-the-paper sweeps: task management
// with optimistic locking under heavy lock contention (Extension A), and
// the pipeline's sensitivity to the mutual-exclusion section size
// (Extension B).
//
// Usage:
//
//	extensions [-quick] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"optsync/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()
	if err := run(*quick, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "extensions:", err)
		os.Exit(1)
	}
}

func run(quick, csv bool) error {
	opts := exp.Options{Quick: quick}

	figA, err := exp.ExtOptimisticTaskMgmt(opts)
	if err != nil {
		return err
	}
	printFig(figA, csv)
	if err := exp.CheckExtOptimisticTaskMgmt(figA); err != nil {
		return fmt.Errorf("shape check failed: %w", err)
	}
	fmt.Println("shape check: OK (optimistic tracks regular GWC under contention)")
	fmt.Println()

	figB, err := exp.ExtMXRatioSweep(opts)
	if err != nil {
		return err
	}
	printFig(figB, csv)
	if err := exp.CheckExtMXRatioSweep(figB); err != nil {
		return fmt.Errorf("shape check failed: %w", err)
	}
	fmt.Println("shape check: OK (optimistic >= regular; gain vanishes for tiny sections)")
	return nil
}

func printFig(f exp.Figure, csv bool) {
	if csv {
		fmt.Print(f.CSV())
		return
	}
	fmt.Print(f.Table())
}

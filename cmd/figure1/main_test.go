package main

import "testing"

func TestRunFigure1(t *testing.T) {
	if err := run(false); err != nil {
		t.Fatal(err)
	}
	if err := run(true); err != nil {
		t.Fatal(err)
	}
}

// Command figure1 regenerates the paper's Figure 1: wasted idle times for
// three successive sets of mutually exclusive accesses under Sesame group
// write consistency, entry consistency, and weak/release consistency.
//
// Usage:
//
//	figure1 [-timelines]
package main

import (
	"flag"
	"fmt"
	"os"

	"optsync/internal/exp"
)

func main() {
	timelines := flag.Bool("timelines", true, "print per-model event timelines")
	flag.Parse()
	if err := run(*timelines); err != nil {
		fmt.Fprintln(os.Stderr, "figure1:", err)
		os.Exit(1)
	}
}

func run(timelines bool) error {
	res, err := exp.Figure1()
	if err != nil {
		return err
	}
	fmt.Print(res.Report(timelines))
	if err := res.Check(); err != nil {
		return fmt.Errorf("shape check failed: %w", err)
	}
	fmt.Println("shape check: OK (gwc < entry < weak/release, as in the paper)")
	return nil
}

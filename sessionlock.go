package optsync

import (
	"context"
	"fmt"

	"optsync/internal/core"
	"optsync/internal/gwc"
)

// Session locks: group mutual exclusion.
//
// A SessionLock generalizes Mutex. Every critical section names a
// session: any number of sections in the *same* session run
// concurrently, while different sessions exclude each other. The
// classic locks fall out as special cases —
//
//   - a plain mutex is the one-session case (everyone uses
//     SessionExclusive);
//   - a readers/writer lock is the two-session case: readers share
//     SessionReaders, writers take SessionExclusive.
//
// Readers/writers quick-start:
//
//	l := g.SessionLock("table")
//	data := g.Int("data", l)
//
//	// reader (any number concurrently):
//	_ = h.RLock(l)
//	v, _ := h.Read(data)
//	_ = h.RUnlock(l)
//
//	// writer (excludes every reader and other writer):
//	_ = h.WLock(l)
//	_ = h.Write(data, v+1)
//	_ = h.WUnlock(l)
//
// Entering a session that is already open is near-free: the group root
// admits the join without closing the section, and the optimistic form
// (OptimisticSessionDo) speculates through the join so it costs no
// blocking round trip at all. Fairness is built in: once a different
// session queues at the root, new same-session entries queue behind it
// instead of keeping the open session alive forever.

// Distinguished sessions. Any uint32 names a session; these two cover
// the classic lock shapes.
const (
	// SessionExclusive is session 0: at most one holder, excluding every
	// session — a plain mutex section, and the writer side of a
	// readers/writer lock.
	SessionExclusive uint32 = 0
	// SessionReaders is the conventional shared session used by the
	// RLock/RUnlock sugar — the reader side of a readers/writer lock.
	SessionReaders uint32 = 1
)

// SessionInfo is a lock's locally observed session state: the open
// session, the number of concurrent holders observed, and whether this
// node holds an entry.
type SessionInfo = gwc.SessionInfo

// SessionLock is a group-mutual-exclusion lock within a sharing group,
// managed by the group root like a Mutex.
type SessionLock struct {
	g    *Group
	id   gwc.LockID
	name string
}

// Name reports the lock's name.
func (l *SessionLock) Name() string { return l.name }

// Group reports the sharing group the lock belongs to.
func (l *SessionLock) Group() *Group { return l.g }

func (l *SessionLock) lockID() gwc.LockID { return l.id }

// SessionLock declares (or returns) a named session lock managed by the
// group's root. The namespace is shared with Mutex: a name already
// declared as one kind cannot be redeclared as the other, since both
// are views of the same root-managed lock table.
func (g *Group) SessionLock(name string) *SessionLock {
	g.mu.Lock()
	defer g.mu.Unlock()
	if l, ok := g.sessions[name]; ok {
		return l
	}
	if _, ok := g.mutexes[name]; ok {
		panic(fmt.Sprintf("optsync: lock %q already declared as a Mutex", name))
	}
	l := &SessionLock{g: g, id: g.nextLock, name: name}
	g.nextLock++
	g.sessions[name] = l
	return l
}

// Enter blocks until this node holds an entry in l's given session.
// Same-session entries run concurrently; different sessions exclude
// each other. SessionExclusive behaves exactly like Acquire on a Mutex.
func (h *Handle) Enter(l *SessionLock, session uint32) error {
	return h.node.EnterSession(l.g.id, l.id, session)
}

// EnterContext is Enter with cancellation. On cancellation or deadline
// the queued entry request is withdrawn from the root — or, if the
// entry won the race, the session is left — and ctx's error is
// returned.
func (h *Handle) EnterContext(ctx context.Context, l *SessionLock, session uint32) error {
	return h.node.EnterSessionContext(ctx, l.g.id, l.id, session)
}

// Leave gives up this node's entry in l's open session. Like Release,
// the leave is sequenced after the section's writes, so every node sees
// the data before the session state changes.
func (h *Handle) Leave(l *SessionLock) error {
	return h.node.LeaveSession(l.g.id, l.id)
}

// SessionState reports l's locally observed session state.
func (h *Handle) SessionState(l *SessionLock) (SessionInfo, error) {
	return h.node.SessionState(l.g.id, l.id)
}

// RLock takes a reader (shared) entry on l: readers run concurrently
// with each other and exclude writers.
func (h *Handle) RLock(l *SessionLock) error { return h.Enter(l, SessionReaders) }

// RUnlock releases a reader entry taken with RLock.
func (h *Handle) RUnlock(l *SessionLock) error { return h.Leave(l) }

// WLock takes the writer (exclusive) entry on l, excluding every reader
// and other writer.
func (h *Handle) WLock(l *SessionLock) error { return h.Enter(l, SessionExclusive) }

// WUnlock releases the writer entry taken with WLock.
func (h *Handle) WUnlock(l *SessionLock) error { return h.Leave(l) }

// SessionDo runs body inside l's given session (the regular, blocking
// path): concurrently with same-session sections, excluded from every
// other session.
func (h *Handle) SessionDo(l *SessionLock, session uint32, body func() error) error {
	return h.SessionDoContext(context.Background(), l, session, body)
}

// SessionDoContext is SessionDo with cancellation while waiting to
// enter. Once entered, body runs to completion and the session is left
// regardless of ctx.
func (h *Handle) SessionDoContext(ctx context.Context, l *SessionLock, session uint32, body func() error) error {
	if err := h.EnterContext(ctx, l, session); err != nil {
		return err
	}
	bodyErr := body()
	if err := h.Leave(l); err != nil {
		return err
	}
	return bodyErr
}

// OptimisticSessionDo runs body inside l's given session using the
// paper's optimistic machinery: when the local view suggests the entry
// will be admitted — the lock looks free, or the target session is
// already open, which makes the join near-free — body runs
// speculatively while the (non-blocking) entry request propagates; if
// an incompatible session wins instead, the section rolls back and
// re-executes once the queued entry is granted.
//
// body may run more than once and must confine its shared-state effects
// to the transaction. Variables written inside body should be guarded
// by l (declared with g.Int(name, l)).
func (h *Handle) OptimisticSessionDo(l *SessionLock, session uint32, body func(tx *Tx) error) error {
	return h.OptimisticSessionDoContext(context.Background(), l, session, body)
}

// OptimisticSessionDoContext is OptimisticSessionDo with cancellation,
// honoured with the same bounds as OptimisticDoContext: a section that
// is already speculating first learns whether it was admitted before it
// can stop.
func (h *Handle) OptimisticSessionDoContext(ctx context.Context, l *SessionLock, session uint32, body func(tx *Tx) error) error {
	return h.engine.DoSessionContext(ctx, l.g.id, l.id, session, func(inner *core.Tx) error {
		return body(&Tx{inner: inner, g: l.g})
	})
}
